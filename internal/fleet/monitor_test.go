package fleet

import (
	"testing"

	"bolt/internal/defence"
	"bolt/internal/sim"
)

// TestMonitorAlarmEvents pins the engine↔defence wiring: an attached
// monitor is sampled every tick, its alarm edge surfaces exactly once as a
// MonitorAlarm event carrying the firing tick, its events interleave after
// the tick body's own events for the same server, and resetting the
// monitor re-arms it for a second edge.
func TestMonitorAlarmEvents(t *testing.T) {
	e := buildFleet(7, 4)
	// The fleet's VMs run at 0.9 load, so a low CPU bar with a short
	// sustain fires quickly and deterministically.
	e.SetMonitor(2, defence.NewMonitor(&defence.CPUThreshold{Threshold: 5, Sustain: 3}))

	if e.Monitor(2) == nil || e.Monitor(1) != nil {
		t.Fatal("SetMonitor/Monitor accessor mismatch")
	}

	var alarms []Event
	for tick := 0; tick < 8; tick++ {
		ev, _ := e.Tick(sim.Tick(tick), probeTick)
		for _, x := range ev {
			if x.Kind == MonitorAlarm {
				alarms = append(alarms, x)
			}
		}
	}
	if len(alarms) != 1 {
		t.Fatalf("got %d MonitorAlarm events, want exactly 1 (the edge)", len(alarms))
	}
	if alarms[0].Server != 2 {
		t.Fatalf("alarm attributed to server %d, want 2", alarms[0].Server)
	}
	if alarms[0].Value != 2 { // sustain 3 → samples at ticks 0,1,2 fire at 2
		t.Fatalf("alarm tick %v, want 2", alarms[0].Value)
	}

	// Re-arm and tick again: a second edge must surface.
	e.Monitor(2).Reset()
	second := 0
	for tick := 8; tick < 16; tick++ {
		ev, _ := e.Tick(sim.Tick(tick), probeTick)
		for _, x := range ev {
			if x.Kind == MonitorAlarm {
				second++
			}
		}
	}
	if second != 1 {
		t.Fatalf("re-armed monitor produced %d edges, want 1", second)
	}
}

// TestMonitorAlarmOrderedAfterBodyEvents checks the per-server event
// order: the monitor samples after the tick body, so for the same server
// and tick the body's events precede the MonitorAlarm.
func TestMonitorAlarmOrderedAfterBodyEvents(t *testing.T) {
	e := buildFleet(7, 2)
	e.SetMonitor(0, defence.NewMonitor(&defence.CPUThreshold{Threshold: 5, Sustain: 1}))

	emitAlways := func(w *World) { w.Emit(99, "", 0) }
	ev, _ := e.Tick(0, emitAlways)
	var kinds []int
	for _, x := range ev {
		if x.Server == 0 {
			kinds = append(kinds, x.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != 99 || kinds[1] != MonitorAlarm {
		t.Fatalf("server 0 event kinds = %v, want [99, MonitorAlarm]", kinds)
	}
}

// TestMonitorParityAcrossShardWorkers extends the determinism contract to
// monitored fleets: alarm events land at identical positions at every
// worker count.
func TestMonitorParityAcrossShardWorkers(t *testing.T) {
	run := func(workers int) []Event {
		withShardWorkers(t, workers)
		e := buildFleet(7, 13)
		for i := 0; i < 13; i += 3 {
			e.SetMonitor(i, defence.NewMonitor(&defence.CPUThreshold{Threshold: 5, Sustain: 2}))
		}
		var all []Event
		for tick := 0; tick < 6; tick++ {
			ev, _ := e.Tick(sim.Tick(tick), probeTick)
			all = append(all, ev...)
		}
		return all
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: event %d = %+v, want %+v", workers, i, got[i], ref[i])
			}
		}
	}
}
