// Package fleet advances a whole simulated datacenter — thousands of
// cluster servers, tens of thousands of VMs — one tick at a time, with the
// per-server work of each tick sharded across a worker pool and the
// results merged at a deterministic tick barrier.
//
// The parallelism is safe because servers are independent within a tick:
// every observable a probe or monitor reads at tick t (observed pressure,
// slowdown, utilisation) is a function of one server's own VMs, served from
// that server's per-(Server, Tick) demand snapshot. Cross-server mutation —
// scheduling, migration, launch waves — happens *between* ticks, on the
// caller's goroutine, exactly like placement changes between episode steps.
//
// Determinism follows the repository's RNG-splitting and ordered-merge
// discipline (DESIGN.md "Fleet tick barrier"):
//
//   - the engine pre-splits one stats.RNG stream per server, in server-id
//     order, at construction; per-server tick bodies draw only from their
//     own stream, so the values consumed are independent of how servers
//     land on workers;
//   - servers are partitioned into contiguous shards whose boundaries are a
//     pure function of (server count, worker count), one worker per shard;
//   - each server writes events into its own index-addressed buffer, and
//     the tick barrier merges buffers in server-id order — so the emitted
//     event sequence, and every float reduced across servers (reduced
//     serially at the barrier, never in the workers), is byte-identical at
//     every -shardworkers level.
package fleet

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"bolt/internal/cluster"
	"bolt/internal/defence"
	"bolt/internal/par"
	"bolt/internal/sim"
	"bolt/internal/stats"
)

// shardWorkers is the width of the fleet tick pool; 0 means GOMAXPROCS. It
// is process-global (like exper's episode pool) because it is a pure
// throughput knob: shard boundaries affect only which goroutine runs a
// server's tick body, never what that body computes or emits.
var shardWorkers atomic.Int32

// SetShardWorkers fixes how many shards advance concurrently within one
// fleet tick (the boltbench -shardworkers knob). n <= 0 restores the
// default (GOMAXPROCS at use time).
func SetShardWorkers(n int) {
	if n < 0 {
		n = 0
	}
	shardWorkers.Store(int32(n))
}

// ShardWorkers returns the current fleet tick pool width.
func ShardWorkers() int {
	if n := int(shardWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Event is one observation emitted by per-server tick work: a probe
// crossing its detection threshold, a monitor tripping, a co-residency
// confirmation. Kind is caller-defined; the engine only orders events.
type Event struct {
	Server int     // index of the emitting server (stamped by Emit)
	VM     string  // subject VM id, if any
	Kind   int     // caller-defined discriminator
	Value  float64 // caller-defined payload
}

// MonitorAlarm is the Kind of events the engine itself emits when a
// server's attached defence monitor fires (see SetMonitor). It is negative
// so caller-defined kinds (conventionally non-negative) never collide.
const MonitorAlarm = -1

// World is the view a tick body gets of one server: the server itself, the
// tick being advanced, and the server's own pre-split RNG stream. A body
// must touch only this server and its VMs and draw randomness only from
// RNG — the two rules that make shards schedule-independent.
type World struct {
	Index  int
	Server *sim.Server
	Tick   sim.Tick
	RNG    *stats.RNG

	events *[]Event
}

// Emit records an event against this server. Events surface at the tick
// barrier in server-id order (and, within one server, emission order).
// The *World a tick body receives is reused for the next server on the
// shard; bodies must not retain it past their return.
func (w *World) Emit(kind int, vm string, value float64) {
	*w.events = append(*w.events, Event{Server: w.Index, VM: vm, Kind: kind, Value: value})
}

// TickFunc is the per-server work of one fleet tick.
type TickFunc func(w *World)

// Stats is the fleet-wide view the barrier reduces after every tick. The
// float fields are folded serially in server-id order, so they are
// bit-identical at every worker count.
type Stats struct {
	Servers   int
	VMs       int     // VMs placed across the fleet
	FreeVCPUs int     // unallocated hyperthreads across the fleet
	MeanCPU   float64 // mean per-server CPU utilisation, percent
}

// Engine shards one cluster's servers across a worker pool and advances
// them tick by tick. The fleet is fixed at construction: the per-server
// RNG streams are split once, in server-id order, and adding servers later
// would misalign them. VM placement and migration remain free to happen
// between ticks.
type Engine struct {
	cl   *cluster.Cluster
	rngs []*stats.RNG

	// monitors[i], when non-nil, is server i's defence monitor: sampled
	// once per tick inside the server's own shard (after the tick body),
	// with alarm edges surfacing as MonitorAlarm events at the barrier.
	// Like all per-server state, a monitor is touched only by the shard
	// that owns its server, so sharded ticking stays deterministic.
	monitors []*defence.Monitor

	// Per-server slots written inside a tick, merged at the barrier.
	// Reused across ticks so a steady-state tick allocates nothing.
	events [][]Event
	cpu    []float64
	vms    []int
	free   []int
	merged []Event
}

// NewEngine builds an engine over the cluster's current servers, deriving
// one independent RNG stream per server from rng (advancing it once per
// server, in server-id order — the PR 6 pre-split discipline).
func NewEngine(cl *cluster.Cluster, rng *stats.RNG) *Engine {
	n := len(cl.Servers)
	return &Engine{
		cl:     cl,
		rngs:   rng.SplitN(n),
		events: make([][]Event, n),
		cpu:    make([]float64, n),
		vms:    make([]int, n),
		free:   make([]int, n),
	}
}

// Servers returns the fleet size the engine was built over.
func (e *Engine) Servers() int { return len(e.rngs) }

// RNG returns server i's pre-split stream, for callers that need to seed
// per-server state (a resident adversary's probe) from the same stream its
// tick bodies will draw from.
func (e *Engine) RNG(i int) *stats.RNG { return e.rngs[i] }

// SetMonitor attaches a defence monitor to server i (nil detaches). The
// engine feeds it the server's aggregate usage every tick; the tick on
// which its detector first fires is reported once as a MonitorAlarm event
// (Value carries the tick), after which the defence layer typically acts
// and calls Monitor.Reset to re-arm it.
func (e *Engine) SetMonitor(i int, m *defence.Monitor) {
	if e.monitors == nil {
		e.monitors = make([]*defence.Monitor, len(e.rngs))
	}
	e.monitors[i] = m
}

// Monitor returns server i's attached monitor, or nil.
func (e *Engine) Monitor(i int) *defence.Monitor {
	if e.monitors == nil {
		return nil
	}
	return e.monitors[i]
}

// Tick advances every server through tick t: each shard's servers run fn
// (which may be nil) and have their occupancy and utilisation sampled, all
// shards concurrently; then the barrier merges per-server events in
// server-id order and reduces fleet Stats serially. The returned event
// slice is owned by the engine and valid until the next Tick.
func (e *Engine) Tick(t sim.Tick, fn TickFunc) ([]Event, Stats) {
	n := len(e.cl.Servers)
	if n != len(e.rngs) {
		panic(fmt.Sprintf("fleet: cluster grew from %d to %d servers after NewEngine; per-server RNG streams are fixed at construction", len(e.rngs), n))
	}
	workers := ShardWorkers()

	par.FanOutBlocks(n, workers,
		func(lo int) string { return fmt.Sprintf("fleet shard at server %d", lo) },
		func(lo, hi int) {
			// One World per shard per tick, re-pointed at each server in
			// turn: fn receives &w, which would otherwise heap-allocate a
			// World per server per tick. Bodies must not retain the pointer
			// past their return.
			var w World
			for i := lo; i < hi; i++ {
				s := e.cl.Servers[i]
				e.events[i] = e.events[i][:0]
				if fn != nil {
					w = World{Index: i, Server: s, Tick: t, RNG: e.rngs[i], events: &e.events[i]}
					fn(&w)
				}
				// The defence monitor samples after the body, appending its
				// alarm edge after the body's own events for this server —
				// a fixed order, so the merged stream stays deterministic.
				if e.monitors != nil {
					if m := e.monitors[i]; m.Sample(s, t) {
						e.events[i] = append(e.events[i], Event{Server: i, Kind: MonitorAlarm, Value: float64(t)})
					}
				}
				// Sampling utilisation last means it rides the observation
				// snapshot the body's queries already built.
				e.cpu[i] = s.CPUUtilization(t)
				e.vms[i] = s.VMCount()
				e.free[i] = s.FreeVCPUs()
			}
		})

	// Tick barrier: fold per-server samples serially in server-id order so
	// the float sums see one fixed operation sequence, and splice the
	// per-server event buffers in the same order.
	var st Stats
	st.Servers = n
	cpuSum := 0.0
	total := 0
	for i := 0; i < n; i++ {
		cpuSum += e.cpu[i]
		st.VMs += e.vms[i]
		st.FreeVCPUs += e.free[i]
		total += len(e.events[i])
	}
	if n > 0 {
		st.MeanCPU = cpuSum / float64(n)
	}
	if cap(e.merged) < total {
		e.merged = make([]Event, 0, total)
	}
	e.merged = e.merged[:0]
	for i := 0; i < n; i++ {
		e.merged = append(e.merged, e.events[i]...)
	}
	return e.merged, st
}
