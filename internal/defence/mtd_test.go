package defence

import (
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// loadedServer returns a server carrying one VM driven at the given level.
func loadedServer(t *testing.T, level float64) *sim.Server {
	t.Helper()
	s := sim.NewServer("host", sim.ServerConfig{})
	spec := workload.Memcached(stats.NewRNG(1), 0)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: level}, 1)
	if err := s.Place(&sim.VM{ID: "vm", VCPUs: 4, App: app}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCPUThresholdResetRearms(t *testing.T) {
	d := &CPUThreshold{Threshold: 50, Sustain: 3}
	hot := usage(map[sim.Resource]float64{sim.CPU: 90})
	for i := sim.Tick(0); i < 3; i++ {
		d.Observe(i, hot)
	}
	if alarmed, _ := d.Alarmed(); !alarmed {
		t.Fatal("precondition: detector should have fired")
	}

	d.Reset()
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("Reset left the alarm latched")
	}
	if d.Threshold != 50 || d.Sustain != 3 {
		t.Fatal("Reset clobbered configuration")
	}

	// The streak must restart from zero: two hot samples (below Sustain)
	// must not fire, the third must.
	d.Observe(100, hot)
	d.Observe(101, hot)
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("streak survived Reset: fired before a fresh sustain window")
	}
	d.Observe(102, hot)
	alarmed, at := d.Alarmed()
	if !alarmed {
		t.Fatal("re-armed detector never fired on a fresh sustained load")
	}
	if at != 102 {
		t.Fatalf("re-fire at %d, want 102", at)
	}
}

func TestAnomalyResetRearmsAndRelearnsBaseline(t *testing.T) {
	d := &MultiResourceAnomaly{Warmup: 5, Sigma: 3, Sustain: 2}
	quiet := usage(map[sim.Resource]float64{sim.CPU: 30, sim.LLC: 40})
	spike := usage(map[sim.Resource]float64{sim.CPU: 30, sim.LLC: 95})
	tick := sim.Tick(0)
	feed := func(v sim.Vector, n int) {
		for i := 0; i < n; i++ {
			d.Observe(tick, v)
			tick++
		}
	}
	feed(quiet, 5) // warm-up
	feed(spike, 2)
	if alarmed, _ := d.Alarmed(); !alarmed {
		t.Fatal("precondition: anomaly should have fired")
	}
	if d.TrippedBy() != sim.LLC {
		t.Fatalf("tripped by %v, want LLC", d.TrippedBy())
	}

	d.Reset()
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("Reset left the alarm latched")
	}
	if d.Warmup != 5 || d.Sigma != 3 || d.Sustain != 2 {
		t.Fatal("Reset clobbered configuration")
	}

	// After a migration the tenant mix changes; the detector must re-learn
	// its baseline. Feed a *different* quiet level as the new normal: the
	// old baseline would call it anomalous, the re-learned one must not.
	newQuiet := usage(map[sim.Resource]float64{sim.CPU: 70, sim.LLC: 75})
	feed(newQuiet, 5) // new warm-up
	feed(newQuiet, 20)
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("re-armed detector kept the stale baseline: steady load fired")
	}
	// And it still catches a fresh deviation from the new baseline.
	feed(usage(map[sim.Resource]float64{sim.CPU: 70, sim.LLC: 10}), 2)
	if alarmed, _ := d.Alarmed(); !alarmed {
		t.Fatal("re-armed detector never fired on a fresh anomaly")
	}
}

func TestMonitorReportsAlarmEdgeOnce(t *testing.T) {
	s := loadedServer(t, 0.9)
	m := NewMonitor(&CPUThreshold{Threshold: 10, Sustain: 3})
	edges := 0
	for tick := sim.Tick(0); tick < 10; tick++ {
		if m.Sample(s, tick) {
			edges++
		}
	}
	if edges != 1 {
		t.Fatalf("alarm edge reported %d times, want exactly once", edges)
	}
	if alarmed, _ := m.Alarmed(); !alarmed {
		t.Fatal("latched state should remain visible after the edge")
	}
}

func TestMonitorResetRearms(t *testing.T) {
	s := loadedServer(t, 0.9)
	m := NewMonitor(&CPUThreshold{Threshold: 10, Sustain: 2})
	tick := sim.Tick(0)
	waitEdge := func() bool {
		for i := 0; i < 10; i++ {
			if m.Sample(s, tick) {
				return true
			}
			tick++
		}
		return false
	}
	if !waitEdge() {
		t.Fatal("first alarm edge never fired")
	}
	m.Reset()
	if alarmed, _ := m.Alarmed(); alarmed {
		t.Fatal("Reset left the monitor's detector latched")
	}
	if !waitEdge() {
		t.Fatal("re-armed monitor never fired a second edge")
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	if m.Sample(loadedServer(t, 0.5), 0) {
		t.Fatal("nil monitor reported an edge")
	}
	if alarmed, _ := m.Alarmed(); alarmed {
		t.Fatal("nil monitor reported alarmed")
	}
	m.Reset() // must not panic

	empty := &Monitor{} // no detector
	if empty.Sample(loadedServer(t, 0.5), 0) {
		t.Fatal("detector-less monitor reported an edge")
	}
	empty.Reset()
}

func TestMovingTargetCadence(t *testing.T) {
	p := NewMovingTarget(10)
	p.Track("victim", 0)
	p.Track("victim", 5) // re-tracking must not restart the clock

	if p.Due("victim", 9) {
		t.Fatal("due before the period elapsed")
	}
	if !p.Due("victim", 10) {
		t.Fatal("not due at the cadence edge")
	}
	if p.Due("stranger", 1000) {
		t.Fatal("untracked VM reported due")
	}

	p.Moved("victim", 12)
	if p.Due("victim", 21) {
		t.Fatal("due again before a full period since the move")
	}
	if !p.Due("victim", 22) {
		t.Fatal("not due a full period after the move")
	}
	if p.Moves() != 1 {
		t.Fatalf("Moves() = %d, want 1", p.Moves())
	}
}

func TestMovingTargetFailedMoveStaysDue(t *testing.T) {
	// A failed migration (full cluster) must not call Moved; the VM stays
	// due so the move is retried immediately instead of waiting a period.
	p := NewMovingTarget(10)
	p.Track("victim", 0)
	if !p.Due("victim", 10) {
		t.Fatal("precondition: due at the edge")
	}
	// ... migration fails; no Moved call ...
	if !p.Due("victim", 11) {
		t.Fatal("VM no longer due after a failed (unrecorded) move")
	}
	if p.Moves() != 0 {
		t.Fatalf("Moves() = %d after only failures, want 0", p.Moves())
	}
}

func TestMovingTargetZeroValueDefaults(t *testing.T) {
	var p MovingTarget // zero value: default period, lazily allocated map
	p.Track("v", 0)
	if p.Due("v", DefaultMTDPeriod-1) {
		t.Fatal("zero-value policy due before the default period")
	}
	if !p.Due("v", DefaultMTDPeriod) {
		t.Fatal("zero-value policy not due at the default period")
	}
	var q MovingTarget
	q.Moved("w", 7) // must not panic on nil map
	if q.Moves() != 1 {
		t.Fatalf("Moves() = %d, want 1", q.Moves())
	}
}
