package defence

import (
	"strings"
	"testing"

	"bolt/internal/sim"
)

func usage(vals map[sim.Resource]float64) sim.Vector {
	var v sim.Vector
	for r, x := range vals {
		v.Set(r, x)
	}
	return v
}

func TestCPUThresholdFiresOnSustainedLoad(t *testing.T) {
	d := NewCPUThreshold()
	hot := usage(map[sim.Resource]float64{sim.CPU: 90})
	for i := sim.Tick(0); i < 59; i++ {
		d.Observe(i, hot)
	}
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("fired before the sustain window elapsed")
	}
	d.Observe(59, hot)
	alarmed, at := d.Alarmed()
	if !alarmed {
		t.Fatal("sustained 90% CPU should fire")
	}
	if at != 59 {
		t.Fatalf("alarm time %d, want 59", at)
	}
}

func TestCPUThresholdResetsOnDip(t *testing.T) {
	d := NewCPUThreshold()
	hot := usage(map[sim.Resource]float64{sim.CPU: 90})
	cool := usage(map[sim.Resource]float64{sim.CPU: 30})
	for i := sim.Tick(0); i < 50; i++ {
		d.Observe(i, hot)
	}
	d.Observe(50, cool) // dip resets the counter
	for i := sim.Tick(51); i < 100; i++ {
		d.Observe(i, hot)
	}
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("non-sustained load must not fire")
	}
}

func TestCPUThresholdIgnoresOtherResources(t *testing.T) {
	d := NewCPUThreshold()
	// Bolt's evasion: hammer everything except the CPU.
	attack := usage(map[sim.Resource]float64{
		sim.LLC: 100, sim.MemBW: 100, sim.NetBW: 100, sim.DiskBW: 100,
	})
	for i := sim.Tick(0); i < 500; i++ {
		d.Observe(i, attack)
	}
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("a CPU-threshold defence must be blind to uncore contention")
	}
}

func TestAnomalyCatchesUncoreAttack(t *testing.T) {
	d := NewMultiResourceAnomaly()
	normal := usage(map[sim.Resource]float64{
		sim.CPU: 35, sim.LLC: 50, sim.MemBW: 45, sim.NetBW: 40,
	})
	for i := sim.Tick(0); i < 100; i++ {
		d.Observe(i, normal)
	}
	// Bolt launches: LLC and memBW jump, CPU stays flat.
	attack := usage(map[sim.Resource]float64{
		sim.CPU: 35, sim.LLC: 100, sim.MemBW: 95, sim.NetBW: 40,
	})
	for i := sim.Tick(100); i < 200; i++ {
		d.Observe(i, attack)
	}
	alarmed, at := d.Alarmed()
	if !alarmed {
		t.Fatal("the multi-resource detector should catch an uncore attack")
	}
	if at < 100 {
		t.Fatalf("alarm at %d is before the attack began", at)
	}
	if r := d.TrippedBy(); r != sim.LLC && r != sim.MemBW {
		t.Fatalf("tripped by %v, want the attacked resource", r)
	}
}

func TestAnomalyToleratesNoise(t *testing.T) {
	d := NewMultiResourceAnomaly()
	base := 50.0
	for i := sim.Tick(0); i < 400; i++ {
		// ±6-point sawtooth around the baseline: ordinary load variation.
		v := base + float64(i%13) - 6
		d.Observe(i, usage(map[sim.Resource]float64{sim.LLC: v, sim.CPU: v * 0.7}))
	}
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("ordinary variation must not fire the anomaly detector")
	}
}

func TestAnomalyNeedsSustain(t *testing.T) {
	d := NewMultiResourceAnomaly()
	normal := usage(map[sim.Resource]float64{sim.LLC: 50})
	for i := sim.Tick(0); i < 100; i++ {
		d.Observe(i, normal)
	}
	// A brief spike shorter than the sustain window.
	spike := usage(map[sim.Resource]float64{sim.LLC: 100})
	for i := sim.Tick(100); i < 110; i++ {
		d.Observe(i, spike)
	}
	for i := sim.Tick(110); i < 200; i++ {
		d.Observe(i, normal)
	}
	if alarmed, _ := d.Alarmed(); alarmed {
		t.Fatal("a 10-sample spike must not fire a 20-sample-sustain detector")
	}
}

func TestHostUsageAggregates(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	a := &sim.VM{ID: "a", VCPUs: 2, App: constApp{usage(map[sim.Resource]float64{sim.LLC: 30})}}
	b := &sim.VM{ID: "b", VCPUs: 2, App: constApp{usage(map[sim.Resource]float64{sim.LLC: 25})}}
	for _, vm := range []*sim.VM{a, b} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if got := HostUsage(s, 0).Get(sim.LLC); got != 55 {
		t.Fatalf("aggregate LLC usage = %v, want 55", got)
	}
}

type constApp struct{ d sim.Vector }

func (c constApp) Demand(sim.Tick) sim.Vector { return c.d }
func (c constApp) Sensitivity() sim.Vector    { return sim.Vector{} }

func TestVerdictString(t *testing.T) {
	v := Verdict{Detector: "cpu-threshold", Alarmed: false}
	if !strings.Contains(v.String(), "no alarm") {
		t.Fatalf("verdict string %q", v.String())
	}
	v = Verdict{Detector: "x", Alarmed: true, At: 600}
	if !strings.Contains(v.String(), "60s") {
		t.Fatalf("verdict string %q", v.String())
	}
}
