// Moving-target defence: instead of (or in addition to) hardening
// placement, the provider periodically re-places protected VMs so that a
// co-residency an attacker worked to establish stops paying off. The
// policy here follows the moving-target literature the ROADMAP cites: a
// deterministic re-placement cadence as the baseline (the attacker can
// never rely on more than one cadence period of co-residency), accelerated
// by per-host Monitor alarms when a detector sees attack-like pressure.
package defence

import "bolt/internal/sim"

// Monitor couples one host with a Detector and tracks the alarm *edge*:
// Sample reports true exactly once, on the tick the detector first fires,
// so a caller acting on alarms (migrating the host's victims, resetting
// the detector) does not re-act on a latched alarm every subsequent tick.
//
// A Monitor holds per-host mutable state and is driven from exactly one
// goroutine — inside a fleet tick that is the host's own shard, which is
// what makes monitors safe under sharded fleet ticking.
type Monitor struct {
	Det Detector

	fired bool
}

// NewMonitor wraps a detector for per-host fleet monitoring.
func NewMonitor(det Detector) *Monitor { return &Monitor{Det: det} }

// Sample feeds the host's aggregate usage at tick t into the detector and
// reports whether the alarm fired on this very sample (the alarm edge).
func (m *Monitor) Sample(s *sim.Server, t sim.Tick) bool {
	if m == nil || m.Det == nil {
		return false
	}
	m.Det.Observe(t, s.HostDemand(t))
	alarmed, _ := m.Det.Alarmed()
	if alarmed && !m.fired {
		m.fired = true
		return true
	}
	return false
}

// Alarmed reports the underlying detector's latched state.
func (m *Monitor) Alarmed() (bool, sim.Tick) {
	if m == nil || m.Det == nil {
		return false, 0
	}
	return m.Det.Alarmed()
}

// Reset re-arms the monitor and its detector so the same Monitor keeps
// watching the host after the defence acted on an alarm.
func (m *Monitor) Reset() {
	if m == nil || m.Det == nil {
		return
	}
	m.Det.Reset()
	m.fired = false
}

// MovingTarget decides *when* a protected VM should be re-placed. It keeps
// one clock per tracked VM: a VM is due when Period ticks have elapsed
// since its last move (or since tracking began). The decision layer is
// deliberately separate from the mechanism — internal/cluster.Migrate does
// the re-placement — so the policy composes with any scheduler and its
// failure handling (a full cluster means the move is simply retried at the
// next cadence edge; see Moved).
type MovingTarget struct {
	// Period is the re-placement cadence in ticks; 0 means 32 (3.2 s of
	// simulated time — twice per 16-tick probe window, so a probe score
	// averaged over a window sees the victim for at most half of it).
	Period sim.Tick

	last  map[string]sim.Tick
	moves int
}

// DefaultMTDPeriod is the cadence used when MovingTarget.Period is zero.
const DefaultMTDPeriod sim.Tick = 32

// NewMovingTarget returns the policy with the given cadence (0 = default).
func NewMovingTarget(period sim.Tick) *MovingTarget {
	if period <= 0 {
		period = DefaultMTDPeriod
	}
	return &MovingTarget{Period: period, last: map[string]sim.Tick{}}
}

// Track registers a protected VM, starting its cadence clock at t. Already
// tracked VMs keep their clock.
func (p *MovingTarget) Track(id string, t sim.Tick) {
	if p.last == nil {
		p.last = map[string]sim.Tick{}
	}
	if _, ok := p.last[id]; !ok {
		p.last[id] = t
	}
}

// Due reports whether the tracked VM's cadence has elapsed at t. Untracked
// VMs are never due.
func (p *MovingTarget) Due(id string, t sim.Tick) bool {
	period := p.Period
	if period <= 0 {
		period = DefaultMTDPeriod
	}
	last, ok := p.last[id]
	return ok && t-last >= period
}

// Moved records a successful re-placement of the VM at t, restarting its
// cadence clock. A failed migration (ErrClusterFull) must NOT be recorded:
// leaving the clock alone keeps the VM due, so the move is retried on the
// next tick instead of silently skipping a whole period.
func (p *MovingTarget) Moved(id string, t sim.Tick) {
	if p.last == nil {
		p.last = map[string]sim.Tick{}
	}
	p.last[id] = t
	p.moves++
}

// Moves returns how many re-placements the policy has recorded — the
// defender's cost metric (each move is a live migration with an outage).
func (p *MovingTarget) Moves() int { return p.moves }
