// Package defence implements the provider-side attack detectors the
// paper's DoS analysis argues about (§5.1): Bolt's attack is engineered to
// evade "DoS mitigation techniques, such as load-triggered VM migration",
// which watch CPU utilisation. This package provides that detector, plus a
// stronger multi-resource anomaly detector, so the evasion claim can be
// measured rather than asserted: the CPU-threshold defence fires on the
// naive attack and misses Bolt's, while a detector that baselines *every*
// shared resource catches Bolt too — at the price of watching signals
// providers do not usually monitor.
package defence

import (
	"fmt"
	"math"

	"bolt/internal/sim"
)

// Detector observes a host over time and reports whether its signal looks
// like an attack.
type Detector interface {
	// Observe feeds one utilisation sample per resource at time t.
	Observe(t sim.Tick, usage sim.Vector)
	// Alarmed reports whether the detector has fired, and when.
	Alarmed() (bool, sim.Tick)
	// Reset re-arms the detector: the alarm state and every learned
	// statistic are cleared, so the same value can watch the next episode
	// (or keep watching a host after the defence acted on the alarm).
	Reset()
	// Name identifies the policy in reports.
	Name() string
}

// CPUThreshold is the industry-standard load trigger: it fires when CPU
// utilisation stays above Threshold for Sustain consecutive samples. This
// is the sensor behind utilisation-triggered live migration.
type CPUThreshold struct {
	Threshold float64  // percent; 0 means 70
	Sustain   sim.Tick // samples above threshold before firing; 0 means 60

	above     sim.Tick
	start     sim.Tick
	alarmed   bool
	alarmedAt sim.Tick
}

// NewCPUThreshold returns the defence with the paper's parameters.
func NewCPUThreshold() *CPUThreshold {
	return &CPUThreshold{Threshold: 70, Sustain: 60}
}

// Name implements Detector.
func (c *CPUThreshold) Name() string { return "cpu-threshold" }

// Observe implements Detector.
func (c *CPUThreshold) Observe(t sim.Tick, usage sim.Vector) {
	if c.Threshold == 0 {
		c.Threshold = 70
	}
	if c.Sustain == 0 {
		c.Sustain = 60
	}
	if c.alarmed {
		return
	}
	if usage.Get(sim.CPU) > c.Threshold {
		if c.above == 0 {
			c.start = t
		}
		c.above++
		if c.above >= c.Sustain {
			c.alarmed = true
			c.alarmedAt = t
		}
	} else {
		c.above = 0
	}
}

// Alarmed implements Detector.
func (c *CPUThreshold) Alarmed() (bool, sim.Tick) { return c.alarmed, c.alarmedAt }

// Reset implements Detector: it clears the alarm and the above-threshold
// streak so the detector can be reused across episodes. Before this method
// existed a fired CPUThreshold stayed latched forever — a monitor driving
// migration could act on its alarm exactly once per process. Configuration
// (Threshold, Sustain) is preserved.
func (c *CPUThreshold) Reset() {
	c.above = 0
	c.start = 0
	c.alarmed = false
	c.alarmedAt = 0
}

// MultiResourceAnomaly learns a per-resource baseline (mean and variance,
// Welford's method) during a warm-up window, then fires when any resource's
// usage deviates from its baseline by more than Sigma standard deviations
// for Sustain consecutive samples. It catches contention-injection attacks
// that deliberately avoid the CPU.
type MultiResourceAnomaly struct {
	Warmup  sim.Tick // baseline-learning samples; 0 means 100
	Sigma   float64  // deviation threshold; 0 means 4
	Sustain sim.Tick // consecutive anomalous samples; 0 means 20

	n         sim.Tick
	mean      sim.Vector
	varAcc    sim.Vector
	anomalous sim.Tick
	alarmed   bool
	alarmedAt sim.Tick
	trippedBy sim.Resource
}

// NewMultiResourceAnomaly returns the detector with defaults.
func NewMultiResourceAnomaly() *MultiResourceAnomaly {
	return &MultiResourceAnomaly{Warmup: 100, Sigma: 4, Sustain: 20}
}

// Name implements Detector.
func (m *MultiResourceAnomaly) Name() string { return "multi-resource-anomaly" }

// Observe implements Detector.
func (m *MultiResourceAnomaly) Observe(t sim.Tick, usage sim.Vector) {
	if m.Warmup == 0 {
		m.Warmup = 100
	}
	if m.Sigma == 0 {
		m.Sigma = 4
	}
	if m.Sustain == 0 {
		m.Sustain = 20
	}
	if m.alarmed {
		return
	}
	if m.n < m.Warmup {
		// Welford-style accumulation of the baseline.
		m.n++
		k := float64(m.n)
		for _, r := range sim.AllResources() {
			delta := usage.Get(r) - m.mean.Get(r)
			m.mean[r] += delta / k
			m.varAcc[r] += delta * (usage.Get(r) - m.mean.Get(r))
		}
		return
	}
	hit := false
	for _, r := range sim.AllResources() {
		sd := math.Sqrt(m.varAcc.Get(r) / float64(m.n))
		if sd < 2 {
			sd = 2 // floor: quiet resources still need real deviation
		}
		if math.Abs(usage.Get(r)-m.mean.Get(r)) > m.Sigma*sd {
			hit = true
			if !m.alarmed {
				m.trippedBy = r
			}
			break
		}
	}
	if hit {
		m.anomalous++
		if m.anomalous >= m.Sustain {
			m.alarmed = true
			m.alarmedAt = t
		}
	} else {
		m.anomalous = 0
	}
}

// Alarmed implements Detector.
func (m *MultiResourceAnomaly) Alarmed() (bool, sim.Tick) { return m.alarmed, m.alarmedAt }

// Reset implements Detector: it clears the alarm, the anomaly streak, and
// the learned baseline, so a reused detector re-learns its warm-up from the
// host's current behaviour (after a migration the tenant mix — and thus the
// legitimate baseline — has changed, so relearning is the correct
// behaviour, not an implementation convenience). Configuration (Warmup,
// Sigma, Sustain) is preserved.
func (m *MultiResourceAnomaly) Reset() {
	m.n = 0
	m.mean = sim.Vector{}
	m.varAcc = sim.Vector{}
	m.anomalous = 0
	m.alarmed = false
	m.alarmedAt = 0
	m.trippedBy = 0
}

// TrippedBy returns the resource whose deviation fired the alarm.
func (m *MultiResourceAnomaly) TrippedBy() sim.Resource { return m.trippedBy }

// HostUsage returns the aggregate per-resource demand on a server at time
// t — the signal a provider-side monitor samples. It is served from the
// server's per-tick demand snapshot (sim.Server.HostDemand), which folds
// the same clamped Vector.Add in placement order as the loop it replaced.
func HostUsage(s *sim.Server, t sim.Tick) sim.Vector {
	return s.HostDemand(t)
}

// Verdict summarises one detector's outcome against one attack run.
type Verdict struct {
	Detector string
	Alarmed  bool
	At       sim.Tick
}

// String renders the verdict for reports.
func (v Verdict) String() string {
	if !v.Alarmed {
		return fmt.Sprintf("%s: no alarm", v.Detector)
	}
	return fmt.Sprintf("%s: alarm at %.0fs", v.Detector, v.At.Seconds())
}
