// Package main_test holds the benchmark harness of deliverable (d): one
// testing.B benchmark per table and figure of the paper's evaluation, plus
// the design-choice ablations DESIGN.md calls out. Each benchmark runs the
// corresponding experiment end to end and reports its headline metrics as
// custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. The per-experiment index in DESIGN.md maps each
// benchmark to the paper artefact it reproduces; EXPERIMENTS.md records
// paper-vs-measured values.
package main_test

import (
	"fmt"
	"sort"
	"testing"

	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/exper"
	"bolt/internal/fleet"
	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// benchSeed keeps every benchmark on the same deterministic inputs.
const benchSeed = 42

// runExperiment executes the registered experiment b.N times and reports
// its headline metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var last *exper.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = e.Run(benchSeed)
	}
	b.StopTimer()
	keys := make([]string, 0, len(last.Metrics))
	for k := range last.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Custom metrics surface the reproduced numbers in the bench output.
	for _, k := range keys {
		b.ReportMetric(last.Metrics[k], k)
	}
}

// --- Tables ---

// BenchmarkTable1DetectionAccuracy regenerates Table 1: per-class detection
// accuracy under the least-loaded and Quasar schedulers.
func BenchmarkTable1DetectionAccuracy(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2RFA regenerates Table 2: resource-freeing attack impact on
// the three victims and the beneficiary.
func BenchmarkTable2RFA(b *testing.B) { runExperiment(b, "table2") }

// --- Figures ---

// BenchmarkFigure2Heatmaps regenerates Fig. 2: P(memcached) as a function
// of resource-pressure pairs.
func BenchmarkFigure2Heatmaps(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure4Coverage regenerates Fig. 4: training-set coverage of the
// resource-characteristics space.
func BenchmarkFigure4Coverage(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5StarCharts regenerates Fig. 5: within-framework resource
// profiles and similarity scores.
func BenchmarkFigure5StarCharts(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6CoResidents regenerates Fig. 6: accuracy vs co-resident
// count and vs dominant resource.
func BenchmarkFigure6CoResidents(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7Iterations regenerates Fig. 7: the PDF of iterations
// until detection.
func BenchmarkFigure7Iterations(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8PhaseTimeline regenerates Fig. 8: phase-change detection
// over a five-phase victim.
func BenchmarkFigure8PhaseTimeline(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9PressureAccuracy regenerates Fig. 9: accuracy vs victim
// pressure per resource.
func BenchmarkFigure9PressureAccuracy(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10Sensitivity regenerates Fig. 10: the profiling-interval,
// VM-size, and benchmark-count sweeps.
func BenchmarkFigure10Sensitivity(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11StudyPDF regenerates Fig. 11: the user-study application
// type PDF.
func BenchmarkFigure11StudyPDF(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFigure12StudyAccuracy regenerates Fig. 12: user-study label and
// characteristics accuracy plus instance occupancy.
func BenchmarkFigure12StudyAccuracy(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFigure13DoSTimeline regenerates Fig. 13: tail latency and CPU
// utilisation under the Bolt vs naive DoS with the migration defence.
func BenchmarkFigure13DoSTimeline(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFigure14Isolation regenerates Fig. 14: detection accuracy under
// the isolation-mechanism stacks on all three platforms.
func BenchmarkFigure14Isolation(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkConfusion regenerates the §3.4 misclassification analysis.
func BenchmarkConfusion(b *testing.B) { runExperiment(b, "confusion") }

// BenchmarkInsights regenerates the §3.2 per-resource information-value
// analysis.
func BenchmarkInsights(b *testing.B) { runExperiment(b, "insights") }

// --- Text results ---

// BenchmarkDoSImpact regenerates the §5.1 aggregate DoS impact numbers.
func BenchmarkDoSImpact(b *testing.B) { runExperiment(b, "dosimpact") }

// BenchmarkCoResidency regenerates the §5.3 co-residency attack outcome.
func BenchmarkCoResidency(b *testing.B) { runExperiment(b, "coresidency") }

// BenchmarkDefenceEvasion regenerates the §5.1 evasion analysis: which
// provider-side detectors each attack trips.
func BenchmarkDefenceEvasion(b *testing.B) { runExperiment(b, "defence") }

// BenchmarkIsolationCost regenerates the §6 performance/utilisation cost of
// core isolation.
func BenchmarkIsolationCost(b *testing.B) { runExperiment(b, "isocost") }

// --- Ablations (DESIGN.md design choices) ---

// BenchmarkAblations runs the full ablation suite in one report.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablation") }

// ablationRun measures controlled-experiment accuracy under one detector
// configuration at half scale.
func ablationRun(b *testing.B, cfg core.Config) {
	b.Helper()
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := core.Train(workload.TrainingSpecs(benchSeed), cfg)
		res := exper.RunControlled(exper.ControlledConfig{
			Seed: benchSeed, Servers: 20, Victims: 54, Detector: det,
		})
		acc = res.Accuracy()
	}
	b.StopTimer()
	b.ReportMetric(acc, "accuracy_%")
}

// BenchmarkAblationPureCF measures label accuracy with the content-based
// stage disabled (pure collaborative filtering cannot label victims).
func BenchmarkAblationPureCF(b *testing.B) {
	ablationRun(b, core.Config{Recommender: mining.RecommenderConfig{PureCF: true}})
}

// BenchmarkAblationUnweightedPearson measures accuracy with Eq. 1's σ
// weights replaced by the classic coefficient.
func BenchmarkAblationUnweightedPearson(b *testing.B) {
	ablationRun(b, core.Config{Recommender: mining.RecommenderConfig{Unweighted: true}})
}

// BenchmarkAblationEnergy sweeps the SVD energy-retention rule.
func BenchmarkAblationEnergy(b *testing.B) {
	for _, energy := range []float64{0.5, 0.9, 0.99} {
		energy := energy
		b.Run(percentName(energy), func(b *testing.B) {
			ablationRun(b, core.Config{Recommender: mining.RecommenderConfig{EnergyFraction: energy}})
		})
	}
}

func percentName(f float64) string {
	switch {
	case f >= 0.99:
		return "energy99"
	case f >= 0.9:
		return "energy90"
	default:
		return "energy50"
	}
}

// BenchmarkAblationShutter measures accuracy with shutter profiling off.
func BenchmarkAblationShutter(b *testing.B) {
	ablationRun(b, core.Config{DisableShutter: true})
}

// BenchmarkAblationMRC measures accuracy with the miss-ratio-curve probe
// (the §3.3 future-work extension) off.
func BenchmarkAblationMRC(b *testing.B) {
	ablationRun(b, core.Config{DisableMRC: true})
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkRecommenderDetect measures one sparse detection through the
// hybrid recommender (the paper reports an 80 ms p95 end-to-end latency).
func BenchmarkRecommenderDetect(b *testing.B) {
	det := core.Train(workload.TrainingSpecs(benchSeed), core.Config{})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[3], known[3] = 70, true // LLC
	obs[5], known[5] = 55, true // MemBW
	obs[7], known[7] = 40, true // NetBW
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Rec.Detect(obs, known)
	}
}

// BenchmarkDetectBatch measures the fused batched detection pass the
// serving plane (internal/serve) flushes through, sweeping the batch size.
// ns/query is the per-request cost: the fold-in's per-sweep work amortises
// across the batch, so it should fall as the batch grows — the headroom
// boltd's batching converts into throughput.
func BenchmarkDetectBatch(b *testing.B) {
	det := core.TrainCached(workload.TrainingSpecs(benchSeed), core.Config{})
	n := det.Rec.ResourceCount()
	known := make([]bool, n)
	known[3], known[5], known[7] = true, true, true // LLC, MemBW, NetBW
	rng := stats.NewRNG(benchSeed)
	for _, size := range []int{1, 4, 16, 64} {
		size := size
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			observed := make([][]float64, size)
			for i := range observed {
				observed[i] = make([]float64, n)
				for j := range observed[i] {
					if known[j] {
						observed[i][j] = stats.Clamp(rng.Range(0, 100), 0, 100)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.DetectProfileBatch(observed, known)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/query")
		})
	}
}

// BenchmarkSVD measures the one-sided Jacobi SVD of a training-sized
// matrix.
func BenchmarkSVD(b *testing.B) {
	specs := workload.TrainingSpecs(benchSeed)
	rows := make([][]float64, len(specs))
	for i, s := range specs {
		rows[i] = s.Base.Slice()
	}
	m := mining.FromRows(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.ComputeSVD(m)
	}
}

// BenchmarkTrain measures full detector training (SVD + SGD completion).
func BenchmarkTrain(b *testing.B) {
	specs := workload.TrainingSpecs(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Train(specs, core.Config{})
	}
}

// BenchmarkTrainCached measures the memoized path: after the first call the
// suite's ~20 training passes collapse to a fingerprint and a map lookup.
func BenchmarkTrainCached(b *testing.B) {
	specs := workload.TrainingSpecs(benchSeed)
	core.TrainCached(specs, core.Config{}) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TrainCached(specs, core.Config{})
	}
}

// --- Simulator hot paths ---

// simTickWorld builds the observation-plane benchmark world: an 8-core host
// carrying a reactive victim, a plain batch app, a diurnal service, and a
// 4-vCPU adversary — the co-residency mix the DoS timeline and RFA loops
// walk every tick.
func simTickWorld() (*sim.Server, *sim.VM, *probe.Adversary) {
	rng := stats.NewRNG(benchSeed)
	s := sim.NewServer("bench", sim.ServerConfig{})
	vspec := workload.Memcached(rng.Split(), 1)
	vspec.Jitter = 0
	vapp := workload.NewReactive(workload.NewApp(vspec, workload.Constant{Level: 0.9}, rng.Uint64()))
	victim := &sim.VM{ID: "victim", VCPUs: 3, App: vapp}
	if err := s.Place(victim); err != nil {
		panic(err)
	}
	vapp.Bind(s, victim)
	bspec := workload.Hadoop(rng.Split(), 0)
	bspec.Jitter = 0
	batch := &sim.VM{ID: "batch", VCPUs: 2, App: workload.NewApp(bspec, workload.Batch{Ramp: 10, Level: 0.95}, rng.Uint64())}
	if err := s.Place(batch); err != nil {
		panic(err)
	}
	wspec := workload.Webserver(rng.Split(), 0)
	wspec.Jitter = 0
	web := &sim.VM{ID: "web", VCPUs: 2, App: workload.NewApp(wspec, workload.Diurnal{Min: 0.2, Max: 0.9, Period: 1000}, rng.Uint64())}
	if err := s.Place(web); err != nil {
		panic(err)
	}
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	if err := s.Place(adv.VM); err != nil {
		panic(err)
	}
	return s, victim, adv
}

// BenchmarkSimTick measures one simulator observation tick: the adversary's
// observed vector, the victim's slowdown, and the host CPU utilisation —
// the per-tick work of the fig13 DoS timeline and the Table 2 RFA loops.
// The tick advances every iteration, so this prices a full observation-
// plane snapshot build plus the fused reads, not a warm-cache hit.
func BenchmarkSimTick(b *testing.B) {
	s, victim, adv := simTickWorld()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sim.Tick(i)
		v := s.ObservedVector(adv.VM, t)
		sink += v.Get(sim.LLC) + s.Slowdown(victim, t) + s.CPUUtilization(t)
	}
	_ = sink
}

// BenchmarkEpisodeStep measures one detection-episode step end to end:
// profiling ramps against the simulated host plus the recommender passes —
// the unit of work Table 1, Fig. 10, and Fig. 12 repeat thousands of times.
//
// The episode is warmed past its escalation ladder (core signatures,
// uncore completion, MRC probe, shutter) before the timer starts, so the
// reported cost is the steady-state step the suite actually repeats — and
// the number is stable across -benchtime instead of being dominated by the
// ladder's one-off work at small iteration counts.
func BenchmarkEpisodeStep(b *testing.B) {
	det := core.TrainCached(workload.TrainingSpecs(benchSeed), core.Config{})
	s, _, adv := simTickWorld()
	e := det.NewEpisode(s, adv)
	const warmup = 20
	for i := 0; i < warmup; i++ {
		e.Step(sim.Tick(i * 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(sim.Tick((warmup + i) * 100))
	}
}

// --- The experiment runner ---

// benchRunner runs the full suite through exper.Run at a given parallelism.
// Comparing Suite/parallel1 against Suite/parallel4 (or higher) on a
// multi-core host shows the runner's speedup — the acceptance bar is ≥2x at
// parallel≥4; on a single-core host the two collapse to the same wall
// clock. Results are identical at every level, so the comparison is pure
// scheduling.
func benchRunner(b *testing.B, parallel int) {
	b.Helper()
	exps := exper.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exper.Run(exps, benchSeed, parallel)
	}
}

func BenchmarkSuite(b *testing.B) {
	for _, parallel := range []int{1, 2, 4, 8} {
		parallel := parallel
		b.Run(fmt.Sprintf("parallel%d", parallel), func(b *testing.B) {
			benchRunner(b, parallel)
		})
	}
}

// --- The fleet tick engine ---

// benchFleetTick advances a populated fleet one tick per iteration on the
// sharded engine, with every server running the representative monitor
// body (one RNG draw, two observation-plane reads, a data-dependent
// event). ticks/s is reported as the headline throughput — the number the
// BENCH_fleet.json floor gates on — and server-ticks/s as the
// size-independent rate. Output is byte-identical at every worker count,
// so Fleet/*/workersN sweeps measure pure scheduling.
func benchFleetTick(b *testing.B, servers, workers int) {
	b.Helper()
	fleet.SetShardWorkers(workers)
	defer fleet.SetShardWorkers(0)

	rng := stats.NewRNG(benchSeed)
	cl := cluster.New(servers, sim.ServerConfig{}, cluster.LeastLoaded{})
	mk := []func(*stats.RNG, int) workload.Spec{
		workload.Memcached, workload.Hadoop, workload.Spark,
	}
	for i, s := range cl.Servers {
		for j := 0; j < 5; j++ {
			spec := mk[(i+j)%len(mk)](rng.Split(), i+j)
			app := workload.NewApp(spec, workload.Constant{Level: 0.35}, rng.Uint64())
			vm := &sim.VM{ID: fmt.Sprintf("vm-%d-%d", i, j), VCPUs: 1 + (i+j)%3, App: app}
			if err := s.Place(vm); err != nil {
				b.Fatal(err)
			}
		}
	}
	engine := fleet.NewEngine(cl, rng.Split())
	monitor := func(w *fleet.World) {
		r := sim.Resource(w.RNG.Intn(sim.NumResources))
		p := w.Server.ObservedPressure(nil, r, w.Tick) +
			w.Server.ObservedPressure(nil, sim.DiskBW, w.Tick)
		if p > 120 {
			w.Emit(int(r), "", p)
		}
	}
	engine.Tick(0, monitor) // warm the demand memos and event buffers

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Tick(sim.Tick(i+1), monitor)
	}
	b.StopTimer()
	perTick := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(1/perTick, "ticks/s")
	b.ReportMetric(float64(servers)/perTick, "server-ticks/s")
}

// BenchmarkFleetTick sweeps fleet size × shard workers. The 4096-server
// rows are the ISSUE's target datacenter (~20k VMs at 5 VMs/server).
func BenchmarkFleetTick(b *testing.B) {
	for _, servers := range []int{256, 4096} {
		for _, workers := range []int{1, 2, 4, 8} {
			servers, workers := servers, workers
			b.Run(fmt.Sprintf("servers%d/workers%d", servers, workers), func(b *testing.B) {
				benchFleetTick(b, servers, workers)
			})
		}
	}
}
