module bolt

go 1.22
